open Ulipc_engine
open Ulipc_os

type point = {
  think_mean : Sim_time.t;
  offered_per_ms : float;
  achieved_per_ms : float;
  mean_response_us : float;
  p99_response_us : float;
  utilization : float;
}

let run_point ?(capacity = 64) ?(seed = 42) ~machine ~kind ~nclients
    ~messages_per_client ~think_mean () =
  if nclients <= 0 then invalid_arg "Openloop: nclients must be positive";
  if messages_per_client <= 0 then
    invalid_arg "Openloop: messages_per_client must be positive";
  if think_mean <= 0 then invalid_arg "Openloop: think_mean must be positive";
  let kernel =
    Kernel.create ~ncpus:machine.Ulipc_machines.Machine.ncpus
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:machine.Ulipc_machines.Machine.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:machine.Ulipc_machines.Machine.costs
      ~multiprocessor:machine.Ulipc_machines.Machine.multiprocessor ~kind
      ~nclients ~capacity ()
  in
  let total = nclients * messages_per_client in
  let server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        let remaining = ref nclients in
        while !remaining > 0 do
          let m = Ulipc.Dispatch.receive session in
          match m.Ulipc.Message.opcode with
          | Ulipc.Message.Echo ->
            Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
              (Ulipc.Message.echo_reply m)
          | Ulipc.Message.Disconnect ->
            Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
              (Ulipc.Message.echo_reply m);
            decr remaining
          | Ulipc.Message.Connect | Ulipc.Message.Custom _ ->
            failwith "openloop: unexpected opcode"
        done)
  in
  Ulipc.Session.register_server session server.Proc.pid;
  let response = Stat.create ~keep_samples:true "response (us)" in
  let master = Rng.create ~seed in
  for client = 0 to nclients - 1 do
    let rng = Rng.split master in
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "client-%d" client)
         (fun () ->
           for seq = 1 to messages_per_client do
             (* Idle think time: the client sleeps, it does not spin. *)
             let think = Rng.exponential rng ~mean:(float_of_int think_mean) in
             Usys.sleep (max 1 (int_of_float think));
             let t0 = Usys.time () in
             let (_ : Ulipc.Message.t) =
               Ulipc.Dispatch.send session ~client
                 (Ulipc.Message.make ~opcode:Echo ~reply_chan:client ~seq
                    (float_of_int seq))
             in
             let t1 = Usys.time () in
             Stat.add response (Sim_time.to_us (Sim_time.sub t1 t0))
           done;
           let (_ : Ulipc.Message.t) =
             Ulipc.Dispatch.send session ~client
               (Ulipc.Message.make ~opcode:Disconnect ~reply_chan:client 0.0)
           in
           ()))
  done;
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Format.kasprintf failwith "Openloop: %a" Kernel.pp_result r);
  let elapsed = Kernel.now kernel in
  {
    think_mean;
    offered_per_ms =
      float_of_int nclients /. Sim_time.to_ms think_mean;
    achieved_per_ms = float_of_int total /. Sim_time.to_ms elapsed;
    mean_response_us = Stat.mean response;
    p99_response_us = Stat.percentile response 99.0;
    utilization = Kernel.utilization kernel;
  }

let sweep ?capacity ?seed ~machine ~kind ~nclients ~messages_per_client
    ~think_means () =
  List.map
    (fun think_mean ->
      run_point ?capacity ?seed ~machine ~kind ~nclients ~messages_per_client
        ~think_mean ())
    think_means

let pp_point ppf p =
  Format.fprintf ppf
    "think %a  offered %6.2f/ms  achieved %6.2f/ms  response mean %8.1f us  \
     p99 %8.1f us  util %5.1f%%"
    Sim_time.pp p.think_mean p.offered_per_ms p.achieved_per_ms
    p.mean_response_us p.p99_response_us
    (100.0 *. p.utilization)
