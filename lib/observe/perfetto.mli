(** Chrome-trace-event JSON export (Perfetto's legacy JSON importer).

    One track per actor ([tid] = actor under a single [pid]): every
    event becomes a thread-scoped instant, and when a {!Trace_analysis}
    report is supplied each Block→Wake pair becomes a "blocked" duration
    slice on the sleeper's track and each Wake→Dequeue pair a flow arrow
    from the waker's track to the woken track.  Timestamps are
    normalised so the trace starts at 0 µs.  Load the file at
    https://ui.perfetto.dev or chrome://tracing. *)

val write :
  ?process_name:string ->
  ?report:Trace_analysis.t ->
  path:string ->
  Event.t list ->
  unit
(** Events are written in the deterministic merge order of
    {!Event.compare} regardless of input order. *)
