(** Live telemetry plane: a registry of wait-free instruments sampled
    into a {!Series} ring of timestamped frames.

    Three instrument kinds cover the drivers' needs:

    - {b Counters} ({!counter}/{!add}/{!incr}): monotonic totals bumped
      with one [Atomic.fetch_and_add]; each frame carries the per-window
      delta under the counter's name.
    - {b Gauges} ({!gauge}): point-in-time callbacks (ring depth, slab
      occupancy, trace drops) read at frame time; a raising gauge reads
      as [nan] rather than killing the sampler.
    - {b External counter batches} ({!ext_counters}): a callback
      returning monotonic [(name, total)] pairs — e.g. a
      [Counters.snapshot] flattened with [Counters.to_fields], or
      arena words summed across fork'd children.  The sampler diffs
      each name against its previous total, so frames again carry
      deltas.
    - {b Windowed histograms} ({!whist}/{!record}): double-buffered
      log-bucketed {!Histogram}s, one pair per recording domain
      (registered lazily via DLS).  {!record} is one DLS read, one
      [Atomic.get], and a plain [Histogram.record] — no locks.  At each
      frame the sampler flips the epoch, merges every domain's retired
      buffer ([Histogram.merge_into]) into the window and the
      cumulative total, and resets it; the frame carries
      [name_count]/[name_p50]/[name_p99]/[name_max] ([nan] quantiles on
      an empty window).  The flip race is bounded: at most one
      in-flight record per writer per flip may be lost, double-counted,
      or slide one window — window counts are conservative, totals
      drift by at most [writers] samples per flip.

    Sampling runs either on a background domain
    ({!start_sampler}/{!stop_sampler}) or inline via {!tick} — the
    cross-process driver uses the latter from its fork'd-children
    select loop, where spawning a domain is forbidden.  {!stop_sampler}
    takes a final sample, so summed per-window deltas equal the
    instruments' totals exactly.

    Registration is mutex-guarded and may happen at any time, but
    {!tick} must only ever have one caller at a time (the sampler). *)

type t

val create :
  ?interval_ms:float ->
  ?capacity:int ->
  ?on_frame:(Series.frame -> unit) ->
  unit ->
  t
(** [create ()] is an empty registry.  [interval_ms] (default 10.0) is
    the background sampler's period; [capacity] bounds the frame ring
    (see {!Series.create}); [on_frame] is invoked after each frame is
    pushed — from the sampler domain — which is how [ulipc_top] renders
    live.  @raise Invalid_argument on non-positive [interval_ms]. *)

val interval_ms : t -> float
val series : t -> Series.t
val frames : t -> Series.frame list

(** {2 Instruments} *)

type counter

val counter : t -> string -> counter
val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> (unit -> float) -> unit
val ext_counters : t -> (unit -> (string * int) list) -> unit

type whist

val whist :
  ?lo:float -> ?decades:int -> ?buckets_per_decade:int -> t -> string -> whist
(** Bucket geometry defaults match {!Histogram.create}. *)

val record : whist -> float -> unit
(** Wait-free; safe from any domain concurrently with sampling. *)

val whist_cumulative : whist -> Histogram.t
(** Merge of every window sampled so far (records still sitting in the
    active buffer are not yet included; {!stop_sampler}'s final tick
    folds them in). *)

(** {2 Sampling} *)

val tick : t -> Series.frame
(** Take one sample now: flip windowed histograms, diff counters, read
    gauges, push (and return) the frame.  Single-caller only. *)

val start_sampler : t -> unit
(** Spawn the background sampler domain ([tick] every [interval_ms]).
    Do not use in the cross-process driver's parent before forking —
    OCaml forbids fork after domain spawn; use {!tick} inline instead.
    @raise Invalid_argument if already running. *)

val stop_sampler : t -> unit
(** Stop and join the sampler, then take one final sample closing the
    partial window.  No-op when no sampler is running. *)

val to_prometheus : t -> string
(** Prometheus text exposition: counters as [ulipc_<name>_total],
    gauges as [ulipc_<name>], windowed histograms as summaries
    (quantiles 0.5/0.9/0.99 plus [_sum]/[_count]) over the cumulative
    distribution. *)
