external now_us : unit -> (float[@unboxed])
  = "ulipc_monotonic_us_byte" "ulipc_monotonic_us"
[@@noalloc]

external now_ns : unit -> int = "ulipc_monotonic_ns" [@@noalloc]
