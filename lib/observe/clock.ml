external now_us : unit -> (float[@unboxed])
  = "ulipc_monotonic_us_byte" "ulipc_monotonic_us"
[@@noalloc]
