(** Bounded ring of timestamped telemetry frames.

    One {!frame} is the snapshot of every registered instrument over one
    sampling window: counters appear as per-window deltas, gauges as
    point-in-time reads, windowed histograms as count/p50/p99/max of the
    values recorded inside the window ([nan] when the window is empty —
    rendered as [null] in JSON).  Frames are ordered and monotonic in
    [t_us]; [window_us] is the elapsed time since the previous frame, so
    [delta /. (window_us /. 1000.)] is a per-window msg/ms rate.

    The ring is mutex-guarded (one lock op per sampling interval): a
    live dashboard reads {!latest}/{!frames} while the sampler pushes.
    A full ring overwrites the oldest frame; {!recorded} and {!dropped}
    keep the truncation honest, same contract as [Trace_ring]. *)

type frame = {
  t_us : float;  (** sample timestamp, [Clock.now_us] *)
  window_us : float;  (** elapsed since the previous frame *)
  points : (string * float) array;  (** instrument name -> value *)
}

val point : frame -> string -> float option
(** Linear lookup of a named point; [None] when absent. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty ring keeping the most recent [capacity]
    frames (default 4096 — 40 s of history at a 10 ms interval).
    @raise Invalid_argument on non-positive [capacity]. *)

val push : t -> frame -> unit
val recorded : t -> int
(** Total frames ever pushed, including overwritten ones. *)

val dropped : t -> int
(** Frames lost to overwrite: [max 0 (recorded - capacity)]. *)

val frames : t -> frame list
(** Retained frames, oldest first. *)

val latest : t -> frame option
