(** Causal analysis over a merged trace-event stream.

    Pairs each Wake (the producer's V) with the Dequeue it enabled and
    each Block (the consumer's P) with the Wake that released it,
    per-channel, to recover the two latencies the paper's protocols
    trade against each other: wake-up latency (V issued → released
    consumer takes the message) and block duration (P entered → V
    issued).  Alongside the pairings it checks trace-level invariants —
    no queue underflow, no orphan Block, no lost Wake, per-actor
    sequence integrity — making a trace usable as a race detector.

    Pairing rules (per channel, events in time order; ties broken so
    Enqueue precedes Wake precedes everything else at one instant):
    - Block with no banked Wake credit joins the pending-block queue;
      a Block finding a banked credit pairs with it immediately (the
      raced-wake case: V landed before P).
    - Wake releases the oldest pending Block if any (block-duration
      pair), otherwise banks a credit; either way it joins the
      waiting-wake queue, tagged with the sleeper it released.
    - Wake_drain consumes one banked credit (the C.3' [sem_try_p]
      drain); a drain with no credit is a violation.
    - Dequeue pairs with the oldest waiting Wake that released this
      dequeuer (wake-latency pair); an un-woken dequeue (pure spin
      success) pairs with nothing.
    - A Block by an actor with a waiting Wake cancels that wake: the
      sleeper was woken, found the queue empty and went back to sleep —
      a spurious wake (the producer tas-claimed a waiting flag raised
      for a later wait), counted but not a violation. *)

type dist = {
  n : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}
(** Exact (nearest-rank) percentiles over all samples; [nan] fields when
    [n = 0]. *)

type pair = {
  chan : int;
  from_actor : int;  (** who produced the causing event *)
  to_actor : int;  (** who produced the caused event *)
  t_from_us : float;
  t_to_us : float;
}

val pair_us : pair -> float
(** [t_to_us - t_from_us], clamped at 0. *)

type violation =
  | Queue_underflow of { chan : int; t_us : float }
      (** a Dequeue with no prior unconsumed Enqueue *)
  | Orphan_block of { chan : int; actor : int; t_us : float }
      (** a Block never released by any Wake *)
  | Lost_wake of { chan : int; t_us : float }
      (** a Wake whose credit was never consumed by a Block or drain *)
  | Drain_without_wake of { chan : int; t_us : float }
      (** a Wake_drain with no banked Wake credit *)
  | Wake_without_dequeue of { chan : int; t_us : float }
      (** a Wake whose woken sleeper neither dequeued nor went back to
          sleep *)
  | Non_monotonic_actor of { actor : int; seq : int; t_us : float }
      (** an actor's timestamps run backwards against its sequence
          numbers: the clock stepped mid-trace *)
  | Seq_gap of { actor : int; expected : int; got : int }
      (** an actor's sequence numbers are not contiguous: events were
          lost other than by whole-ring overwrite *)

val pp_violation : Format.formatter -> violation -> unit

type channel_report = {
  chan : int;
  enqueues : int;
  dequeues : int;
  blocks : int;
  wakes : int;
  wake_drains : int;
  spurious_wakes : int;
  handoffs : int;
  spin_exhausts : int;
  wake_latency : dist;
  block_duration : dist;
}

type t = {
  events : int;
  actors : int;
  span_us : float;  (** last timestamp − first timestamp, 0 if empty *)
  complete : bool;  (** as passed to {!analyse} *)
  channels : channel_report list;  (** sorted by channel id *)
  wake_latency : dist;  (** across all channels *)
  block_duration : dist;  (** across all channels *)
  wake_pairs : pair list;  (** Wake → enabled Dequeue, time order *)
  block_pairs : pair list;  (** Block → releasing Wake, time order *)
  blocks : int;
  wakes : int;
  raced_wakes : int;  (** wakes absorbed by the C.3' drain *)
  spurious_wakes : int;
      (** wakes whose woken sleeper found nothing and re-blocked *)
  handoffs : int;
  handoffs_taken : int;
      (** handoffs whose issuing actor's next event is a Dequeue: the
          hint put the server on-CPU and the transfer completed *)
  spin_exhausts : int;
  violations : violation list;
}

val analyse : ?complete:bool -> Event.t list -> t
(** [complete] (default true) asserts the stream has no ring-overwrite
    truncation; when false, end-state invariants (orphan block, lost
    wake, queue underflow, sequence gaps) are skipped because a
    truncated prefix forges them, while pairings and Non_monotonic_actor
    are still produced. *)

val pp : Format.formatter -> t -> unit
(** Multi-line breakdown: totals, per-channel wake-latency and
    block-duration percentiles, hint efficacy, invariant summary. *)
