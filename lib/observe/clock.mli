(** Monotonic clock for trace timestamps and spin-budget guards.

    [Unix.gettimeofday] follows the wall clock, so an NTP step reorders
    merged cross-domain events and can poison wall-clock spin budgets;
    this reads CLOCK_MONOTONIC instead (via a C stub, unboxed and
    allocation-free on the native path).

    Cross-process comparability: CLOCK_MONOTONIC's origin is per-BOOT
    and system-wide on Linux — every process on the machine reads the
    same counter — so timestamps taken in different fork'd processes
    (the cross-process driver's [t0]/[t1] and the merged trace streams)
    are directly comparable, exactly as they are across domains of one
    process.  Only stamps from different backends (simulated vs real
    time) or different machines are incomparable. *)

external now_us : unit -> (float[@unboxed])
  = "ulipc_monotonic_us_byte" "ulipc_monotonic_us"
[@@noalloc]
(** Microseconds since an arbitrary fixed origin; never steps backwards. *)

external now_ns : unit -> int = "ulipc_monotonic_ns" [@@noalloc]
(** Nanoseconds since an arbitrary fixed origin, as an immediate int —
    the variant for hot paths that must stay off the minor heap: unlike
    a float, the result remains immediate through any downstream
    comparison, subtraction or storage in an int array.  Same clock as
    {!now_us}. *)
