let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write ?(process_name = "ulipc") ?report ~path events =
  let events = List.sort Event.compare events in
  let t0 = match events with [] -> 0.0 | e :: _ -> e.Event.t_us in
  let oc = open_out path in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun line ->
        if !first then first := false else output_string oc ",\n";
        output_string oc "    ";
        output_string oc line)
      fmt
  in
  output_string oc "{\n  \"traceEvents\": [\n";
  emit "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"args\": {\"name\": \"%s\"}}"
    (escape process_name);
  let actors =
    List.sort_uniq Int.compare (List.map (fun e -> e.Event.actor) events)
  in
  List.iter
    (fun a ->
      emit
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"args\": {\"name\": \"actor %d\"}}"
        a a)
    actors;
  List.iter
    (fun e ->
      emit
        "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": {\"chan\": %d, \"seq\": %d}}"
        (Event.kind_name e.Event.kind)
        (e.Event.t_us -. t0)
        e.Event.actor e.Event.chan e.Event.seq)
    events;
  (match report with
  | None -> ()
  | Some r ->
    List.iter
      (fun p ->
        emit
          "{\"name\": \"blocked\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": {\"chan\": %d}}"
          (p.Trace_analysis.t_from_us -. t0)
          (Trace_analysis.pair_us p)
          p.Trace_analysis.from_actor p.Trace_analysis.chan)
      r.Trace_analysis.block_pairs;
    List.iteri
      (fun i p ->
        emit
          "{\"name\": \"wake\", \"cat\": \"wake\", \"ph\": \"s\", \"id\": %d, \"ts\": %.3f, \"pid\": 0, \"tid\": %d}"
          i
          (p.Trace_analysis.t_from_us -. t0)
          p.Trace_analysis.from_actor;
        emit
          "{\"name\": \"wake\", \"cat\": \"wake\", \"ph\": \"f\", \"bp\": \"e\", \"id\": %d, \"ts\": %.3f, \"pid\": 0, \"tid\": %d}"
          i
          (p.Trace_analysis.t_to_us -. t0)
          p.Trace_analysis.to_actor)
      r.Trace_analysis.wake_pairs);
  output_string oc "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n";
  close_out oc
