type t = {
  cap : int;
  slots : Event.t array;
  mutable count : int;
  seqs : (int, int ref) Hashtbl.t; (* actor -> next sequence number *)
}

let dummy =
  { Event.t_us = 0.0; actor = -1; seq = 0; chan = 0; kind = Event.Enqueue }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    cap = capacity;
    slots = Array.make capacity dummy;
    count = 0;
    seqs = Hashtbl.create 16;
  }

let capacity t = t.cap

let next_seq t actor =
  match Hashtbl.find_opt t.seqs actor with
  | Some r ->
    let s = !r in
    incr r;
    s
  | None ->
    Hashtbl.add t.seqs actor (ref 1);
    0

let record t kind ~t_us ~actor ~chan =
  let seq = next_seq t actor in
  t.slots.(t.count mod t.cap) <- { Event.t_us; actor; seq; chan; kind };
  t.count <- t.count + 1

let events t =
  let n = Stdlib.min t.count t.cap in
  let start = t.count - n in
  List.init n (fun i -> t.slots.((start + i) mod t.cap))

let recorded t = t.count
let dropped t = Stdlib.max 0 (t.count - t.cap)
