type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let len = String.length lit in
    if n - !pos >= len && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad unicode escape";
          pos := !pos + 4;
          Buffer.add_char b '?'
        | _ -> fail "bad escape");
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        items []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error m -> Error m

let member_opt k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
