(* Bounded ring of timestamped telemetry frames.

   The sampler pushes one frame per window from its own domain while a
   dashboard (ulipc_top) reads concurrently, so the ring is guarded by a
   mutex — contention is one lock per sampling interval, nowhere near
   any hot path.  When the ring is full the oldest frame is overwritten;
   [recorded]/[dropped] keep the truncation honest, mirroring
   Trace_ring. *)

type frame = {
  t_us : float;
  window_us : float;
  points : (string * float) array;
}

let point f name =
  let n = Array.length f.points in
  let rec go i =
    if i >= n then None
    else
      let k, v = f.points.(i) in
      if String.equal k name then Some v else go (i + 1)
  in
  go 0

let empty_frame = { t_us = 0.0; window_us = 0.0; points = [||] }

type t = {
  capacity : int;
  buf : frame array;
  mutable pushed : int; (* total frames ever pushed *)
  lock : Mutex.t;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  {
    capacity;
    buf = Array.make capacity empty_frame;
    pushed = 0;
    lock = Mutex.create ();
  }

let push t f =
  Mutex.protect t.lock (fun () ->
      t.buf.(t.pushed mod t.capacity) <- f;
      t.pushed <- t.pushed + 1)

let recorded t = Mutex.protect t.lock (fun () -> t.pushed)
let dropped t = Mutex.protect t.lock (fun () -> max 0 (t.pushed - t.capacity))

let frames t =
  Mutex.protect t.lock (fun () ->
      let n = min t.pushed t.capacity in
      let first = t.pushed - n in
      List.init n (fun i -> t.buf.((first + i) mod t.capacity)))

let latest t =
  Mutex.protect t.lock (fun () ->
      if t.pushed = 0 then None
      else Some t.buf.((t.pushed - 1) mod t.capacity))
