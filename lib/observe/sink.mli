(** Bounded single-threaded event sink for the simulator substrate.

    The simulator runs every simulated proc on one OCaml domain, so this
    sink is a plain ring: an array store plus a counter bump per event,
    no synchronisation.  When full, the oldest events are overwritten
    and counted as dropped, exactly like the real backend's
    [Trace_ring].  Per-actor sequence numbers are assigned here so the
    schema matches cross-backend. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh sink retaining the last [capacity] events (default 65536).
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> Event.kind -> t_us:float -> actor:int -> chan:int -> unit
(** Append one event; the per-[actor] sequence number is assigned
    internally in recording order. *)

val events : t -> Event.t list
(** Retained events in recording order (oldest first). *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overwrite. *)
