(* Log-bucketed histogram with a fixed memory footprint.

   Bucket 0 is the underflow bucket (values below [lo], and any
   non-finite value), buckets 1..nbuckets cover [lo, lo * ratio^nbuckets)
   geometrically, bucket nbuckets+1 is the overflow bucket.  Exact
   count/sum/min/max ride along so the mean and the distribution tails
   stay honest even though each bucket only remembers a count.

   Percentiles use the same interpolated-rank definition as
   Stat.percentile, with each rank resolved to the geometric midpoint of
   its bucket (clamped into [minv, maxv]), so the answer is within one
   bucket's relative error of the exact sample percentile — the property
   the qcheck suite checks against Stat ~keep_samples:true.

   Concurrency contract: one writer per histogram.  Per-domain recording
   plus [merge_into] after the owning domain is joined needs no locks at
   all, which is the intended use on the real-domains backend. *)

type t = {
  hist_name : string;
  lo : float;
  log_ratio : float; (* natural log of the geometric bucket width *)
  nbuckets : int; (* regular buckets, excluding under/overflow *)
  counts : int array; (* nbuckets + 2: index 0 under, nbuckets+1 over *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create ?(lo = 1e-3) ?(decades = 10) ?(buckets_per_decade = 64) hist_name =
  if not (lo > 0.0) then invalid_arg "Histogram.create: lo must be positive";
  if decades <= 0 then invalid_arg "Histogram.create: decades must be positive";
  if buckets_per_decade <= 0 then
    invalid_arg "Histogram.create: buckets_per_decade must be positive";
  let nbuckets = decades * buckets_per_decade in
  {
    hist_name;
    lo;
    log_ratio = Float.log 10.0 /. float_of_int buckets_per_decade;
    nbuckets;
    counts = Array.make (nbuckets + 2) 0;
    n = 0;
    sum = 0.0;
    minv = nan;
    maxv = nan;
  }

let name t = t.hist_name
let bucket_ratio t = Float.exp t.log_ratio
let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_value t = t.minv
let max_value t = t.maxv

(* [not (v >= lo)] also routes nan to the underflow bucket, so the bucket
   counts always sum to [n]. *)
let bucket_index t v =
  if not (v >= t.lo) then 0
  else
    let i = 1 + int_of_float (Float.log (v /. t.lo) /. t.log_ratio) in
    if i > t.nbuckets then t.nbuckets + 1 else i

let record t v =
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if t.n = 1 then begin
    t.minv <- v;
    t.maxv <- v
  end
  else begin
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end;
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1

let clamp t v =
  if Float.is_nan t.minv then v
  else Stdlib.min t.maxv (Stdlib.max t.minv v)

(* Lower edge of regular bucket [i] (1-based). *)
let edge t i = t.lo *. Float.exp (t.log_ratio *. float_of_int (i - 1))

let representative t i =
  if i = 0 then t.minv
  else if i = t.nbuckets + 1 then t.maxv
  else clamp t (t.lo *. Float.exp (t.log_ratio *. (float_of_int i -. 0.5)))

(* The (k+1)-th smallest value, 0-based [k < n].  The extreme ranks are
   the recorded min/max and so are exact; interior ranks resolve to
   their bucket's representative. *)
let value_at_rank t k =
  if k <= 0 then t.minv
  else if k >= t.n - 1 then t.maxv
  else
    let rec go i cum =
      let cum = cum + t.counts.(i) in
      if cum > k then i else go (i + 1) cum
    in
    representative t (go 0 0)

let percentile t p =
  if t.n = 0 then invalid_arg "Histogram.percentile: no samples";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Histogram.percentile: p out of range";
  let rank = p /. 100.0 *. float_of_int (t.n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (t.n - 1) in
  let frac = rank -. float_of_int lo in
  let a = value_at_rank t lo in
  let b = if hi = lo then a else value_at_rank t hi in
  a +. (frac *. (b -. a))

let merge_into ~dst src =
  if
    dst.lo <> src.lo
    || dst.log_ratio <> src.log_ratio
    || dst.nbuckets <> src.nbuckets
  then invalid_arg "Histogram.merge_into: bucket geometries differ";
  if src.n > 0 then begin
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.n <- dst.n + src.n;
    dst.sum <- dst.sum +. src.sum;
    dst.minv <-
      (if Float.is_nan dst.minv then src.minv else Stdlib.min dst.minv src.minv);
    dst.maxv <-
      (if Float.is_nan dst.maxv then src.maxv else Stdlib.max dst.maxv src.maxv)
  end

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.minv <- nan;
  t.maxv <- nan

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "%s: (no samples)" t.hist_name
  else
    Format.fprintf ppf
      "%s: n=%d mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f" t.hist_name t.n
      (mean t) (percentile t 50.0) (percentile t 99.0) t.minv t.maxv

let pp_buckets ppf t =
  if t.n = 0 then Format.fprintf ppf "%s: (no samples)@." t.hist_name
  else begin
    let peak = Array.fold_left max 1 t.counts in
    let row lo_edge hi_edge c =
      if c > 0 then
        Format.fprintf ppf "%12.3f .. %12.3f  %6d %s@." lo_edge hi_edge c
          (String.make (c * 50 / peak) '#')
    in
    row neg_infinity t.lo t.counts.(0);
    for i = 1 to t.nbuckets do
      row (edge t i) (edge t (i + 1)) t.counts.(i)
    done;
    row (edge t (t.nbuckets + 1)) infinity t.counts.(t.nbuckets + 1)
  end
