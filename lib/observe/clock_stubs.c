/* Monotonic timestamps for trace events.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and settimeofday, so events
 * recorded on different domains merge in true order even while the wall
 * clock is being disciplined.  Two variants share the clock read:
 *
 *   - microseconds as a double, matching the trace schema (the native
 *     variant is unboxed and noalloc so recording costs one vDSO call
 *     and no GC work);
 *   - nanoseconds as a tagged OCaml int (Val_long), for hot paths that
 *     must not touch the minor heap at all: a float return is unboxed
 *     only across the external itself, while an int stays immediate
 *     through any amount of downstream arithmetic.  62 signed bits of
 *     nanoseconds overflow after ~73 years of uptime.
 */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

#if !defined(CLOCK_MONOTONIC)
#include <sys/time.h>
#endif

CAMLprim double ulipc_monotonic_us(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec * 1e6 + (double)ts.tv_nsec * 1e-3;
#else
  /* No monotonic clock on this platform: fall back to the wall clock
   * rather than failing to build. */
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return (double)tv.tv_sec * 1e6 + (double)tv.tv_usec;
#endif
}

CAMLprim value ulipc_monotonic_us_byte(value unit)
{
  return caml_copy_double(ulipc_monotonic_us(unit));
}

CAMLprim value ulipc_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
#else
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
#endif
}
