type kind =
  | Enqueue
  | Dequeue
  | Block
  | Wake
  | Wake_drain
  | Handoff
  | Spin_exhaust

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Block -> "block"
  | Wake -> "wake"
  | Wake_drain -> "wake-drain"
  | Handoff -> "handoff"
  | Spin_exhaust -> "spin-exhaust"

(* Dense int codes so allocation-free recorders (Trace_ring) can store a
   kind in a flat int array and rebuild the constructor at drain time. *)
let kind_tag = function
  | Enqueue -> 0
  | Dequeue -> 1
  | Block -> 2
  | Wake -> 3
  | Wake_drain -> 4
  | Handoff -> 5
  | Spin_exhaust -> 6

let kind_of_tag = function
  | 0 -> Enqueue
  | 1 -> Dequeue
  | 2 -> Block
  | 3 -> Wake
  | 4 -> Wake_drain
  | 5 -> Handoff
  | 6 -> Spin_exhaust
  | n -> invalid_arg (Printf.sprintf "Event.kind_of_tag: %d" n)

type t = { t_us : float; actor : int; seq : int; chan : int; kind : kind }

let compare a b =
  let c = Float.compare a.t_us b.t_us in
  if c <> 0 then c
  else
    let c = Int.compare a.actor b.actor in
    if c <> 0 then c else Int.compare a.seq b.seq

(* Cross-process actor namespacing: every fork'd process records with
   [Domain.self () = 0], so merging the children's streams verbatim
   would fuse distinct processes into one actor and break both the
   per-actor sequence order and the analysis' per-consumer state
   machines.  Folding the pid into the high bits keeps the low bits
   recognisable (domain ids are tiny) while making actors unique
   machine-wide; 12 bits of domain id is far above the 128-domain
   runtime cap. *)
let namespace_actor ~pid ev =
  { ev with actor = (pid lsl 12) lor (ev.actor land 0xfff) }

let pp ppf ev =
  Format.fprintf ppf "%.3f us  actor %d #%d  chan %d  %s" ev.t_us ev.actor
    ev.seq ev.chan (kind_name ev.kind)
