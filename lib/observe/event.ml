type kind =
  | Enqueue
  | Dequeue
  | Block
  | Wake
  | Wake_drain
  | Handoff
  | Spin_exhaust

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Block -> "block"
  | Wake -> "wake"
  | Wake_drain -> "wake-drain"
  | Handoff -> "handoff"
  | Spin_exhaust -> "spin-exhaust"

type t = { t_us : float; actor : int; seq : int; chan : int; kind : kind }

let compare a b =
  let c = Float.compare a.t_us b.t_us in
  if c <> 0 then c
  else
    let c = Int.compare a.actor b.actor in
    if c <> 0 then c else Int.compare a.seq b.seq

let pp ppf ev =
  Format.fprintf ppf "%.3f us  actor %d #%d  chan %d  %s" ev.t_us ev.actor
    ev.seq ev.chan (kind_name ev.kind)
