(* Registry of live instruments plus the sampler that turns them into
   Series frames.

   Hot-path contract: [add]/[incr] on a counter is one
   [Atomic.fetch_and_add]; [record] on a windowed histogram is one DLS
   read, one [Atomic.get] and a plain [Histogram.record] into the
   writer's own shard — wait-free, no locks, and no allocation beyond
   what [Histogram.record] itself does today.  Everything else
   (registration, sampling, rendering) is off the hot path and may lock
   and allocate freely.

   Windowed histograms are double-buffered: each recording domain owns a
   pair of histograms (registered lazily through a DLS key), writers
   record into [pair.(epoch land 1)], and the sampler retires the other
   buffer by bumping [epoch], merging every shard's retired histogram
   into the window scratch and the cumulative total, then resetting it.
   The race is bounded and documented: a writer that loaded the old
   epoch can land at most one in-flight record in a buffer the sampler
   is merging, so that one sample may be double-counted, lost, or slide
   into the next window — never torn (OCaml's memory model has no
   out-of-thin-air values) and never more than one per writer per flip.
   Window counts are therefore conservative, exactly like the ring
   [length] snapshots. *)

type counter = {
  c_name : string;
  cell : int Atomic.t;
  mutable c_last : int; (* sampler-only: value at the previous frame *)
}

type whist = {
  w_name : string;
  epoch : int Atomic.t;
  shards : Histogram.t array list ref; (* every domain's double buffer *)
  w_lock : Mutex.t;
  key : Histogram.t array Domain.DLS.key;
  window : Histogram.t; (* sampler scratch: the just-retired window *)
  cumulative : Histogram.t; (* every sampled window since creation *)
}

type instrument =
  | I_counter of counter
  | I_gauge of { g_name : string; g_read : unit -> float }
  | I_ext of {
      ext_read : unit -> (string * int) list;
      ext_last : (string, int) Hashtbl.t;
    }
  | I_whist of whist

type t = {
  interval_ms : float;
  series : Series.t;
  on_frame : (Series.frame -> unit) option;
  lock : Mutex.t; (* guards [instruments] *)
  mutable instruments : instrument list; (* reverse registration order *)
  mutable last_t : float;
  mutable sampler : unit Domain.t option;
  stop : bool Atomic.t;
}

let create ?(interval_ms = 10.0) ?capacity ?on_frame () =
  if not (interval_ms > 0.0) then
    invalid_arg "Telemetry.create: interval_ms must be positive";
  {
    interval_ms;
    series = Series.create ?capacity ();
    on_frame;
    lock = Mutex.create ();
    instruments = [];
    last_t = Clock.now_us ();
    sampler = None;
    stop = Atomic.make false;
  }

let interval_ms t = t.interval_ms
let series t = t.series
let frames t = Series.frames t.series

let register t i =
  Mutex.protect t.lock (fun () -> t.instruments <- i :: t.instruments)

let counter t name =
  let c = { c_name = name; cell = Atomic.make 0; c_last = 0 } in
  register t (I_counter c);
  c

let add c n = ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let counter_value c = Atomic.get c.cell

let gauge t name read = register t (I_gauge { g_name = name; g_read = read })

let ext_counters t read =
  register t (I_ext { ext_read = read; ext_last = Hashtbl.create 16 })

let whist ?lo ?decades ?buckets_per_decade t name =
  let mk tag = Histogram.create ?lo ?decades ?buckets_per_decade (name ^ tag) in
  let shards = ref [] in
  let w_lock = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let pair = [| mk "/0"; mk "/1" |] in
        Mutex.protect w_lock (fun () -> shards := pair :: !shards);
        pair)
  in
  let w =
    {
      w_name = name;
      epoch = Atomic.make 0;
      shards;
      w_lock;
      key;
      window = mk "/window";
      cumulative = mk "";
    }
  in
  register t (I_whist w);
  w

let record w v =
  let pair = Domain.DLS.get w.key in
  Histogram.record pair.(Atomic.get w.epoch land 1) v

let whist_cumulative w = w.cumulative

(* Retire the buffer writers were just using and fold every shard's
   retired histogram into the window scratch (reset first) and the
   cumulative total. *)
let flip_whist w =
  let e = Atomic.fetch_and_add w.epoch 1 in
  let retired = e land 1 in
  Histogram.reset w.window;
  let shards = Mutex.protect w.w_lock (fun () -> !(w.shards)) in
  List.iter
    (fun pair ->
      let h = pair.(retired) in
      Histogram.merge_into ~dst:w.window h;
      Histogram.merge_into ~dst:w.cumulative h;
      Histogram.reset h)
    shards

let whist_points w acc =
  flip_whist w;
  let n = Histogram.count w.window in
  let q p = if n = 0 then nan else Histogram.percentile w.window p in
  (w.w_name ^ "_max", Histogram.max_value w.window)
  :: (w.w_name ^ "_p99", q 99.0)
  :: (w.w_name ^ "_p50", q 50.0)
  :: (w.w_name ^ "_count", float_of_int n)
  :: acc

let instrument_points i acc =
  match i with
  | I_counter c ->
      let v = Atomic.get c.cell in
      let d = v - c.c_last in
      c.c_last <- v;
      (c.c_name, float_of_int d) :: acc
  | I_gauge g ->
      let v = try g.g_read () with _ -> nan in
      (g.g_name, v) :: acc
  | I_ext e ->
      let totals = try e.ext_read () with _ -> [] in
      List.fold_left
        (fun acc (name, v) ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt e.ext_last name)
          in
          Hashtbl.replace e.ext_last name v;
          (name, float_of_int (v - prev)) :: acc)
        acc totals
  | I_whist w -> whist_points w acc

let tick t =
  let now = Clock.now_us () in
  let window_us = now -. t.last_t in
  t.last_t <- now;
  let instruments = Mutex.protect t.lock (fun () -> t.instruments) in
  (* [instruments] is reversed; fold it with a [::] accumulator and the
     points come out in registration order. *)
  let points =
    List.fold_left (fun acc i -> instrument_points i acc) [] instruments
  in
  let frame =
    { Series.t_us = now; window_us; points = Array.of_list points }
  in
  Series.push t.series frame;
  (match t.on_frame with Some f -> f frame | None -> ());
  frame

let start_sampler t =
  if t.sampler <> None then
    invalid_arg "Telemetry.start_sampler: sampler already running";
  Atomic.set t.stop false;
  t.last_t <- Clock.now_us ();
  t.sampler <-
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.stop) do
             Unix.sleepf (t.interval_ms /. 1000.0);
             ignore (tick t)
           done))

let stop_sampler t =
  match t.sampler with
  | None -> ()
  | Some d ->
      Atomic.set t.stop true;
      Domain.join d;
      t.sampler <- None;
      (* Close out the partial window so summed per-window deltas equal
         the instruments' totals exactly. *)
      ignore (tick t)

(* Prometheus text exposition.  Counters become [_total] counters from
   their live cumulative value, gauges are read at dump time, windowed
   histograms render as summaries over every window sampled so far. *)

let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "ulipc_" ^ Bytes.to_string b

let prom_float buf v =
  if Float.is_nan v then Buffer.add_string buf "NaN"
  else Buffer.add_string buf (Printf.sprintf "%.9g" v)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line name v =
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    prom_float buf v;
    Buffer.add_char buf '\n'
  in
  let typ name kind =
    Buffer.add_string buf ("# TYPE " ^ name ^ " " ^ kind ^ "\n")
  in
  let counter_total name v =
    let n = prom_name name ^ "_total" in
    typ n "counter";
    line n (float_of_int v)
  in
  let instruments = Mutex.protect t.lock (fun () -> List.rev t.instruments) in
  List.iter
    (fun i ->
      match i with
      | I_counter c -> counter_total c.c_name (Atomic.get c.cell)
      | I_gauge g ->
          let n = prom_name g.g_name in
          typ n "gauge";
          line n (try g.g_read () with _ -> nan)
      | I_ext e ->
          let totals = try e.ext_read () with _ -> [] in
          List.iter (fun (name, v) -> counter_total name v) totals
      | I_whist w ->
          let n = prom_name w.w_name in
          let h = w.cumulative in
          let cnt = Histogram.count h in
          typ n "summary";
          List.iter
            (fun (q, p) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%s\"} " n q);
              prom_float buf
                (if cnt = 0 then nan else Histogram.percentile h p);
              Buffer.add_char buf '\n')
            [ ("0.5", 50.0); ("0.9", 90.0); ("0.99", 99.0) ];
          line (n ^ "_sum") (Histogram.total h);
          line (n ^ "_count") (float_of_int cnt))
    instruments;
  Buffer.contents buf
