(** A deliberately small JSON reader — objects, arrays, strings,
    numbers, true/false/null — so tests and the trace CLI can validate
    emitted files as real syntax (a raw [nan] token fails the parse)
    without a JSON dependency.  Not a general-purpose parser: surrogate
    pairs in [\u] escapes collapse to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

val parse_result : string -> (t, string) result

val member_opt : string -> t -> t option
(** Field lookup; [None] when absent or not an object. *)
