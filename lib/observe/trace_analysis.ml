(* Single pass over the time-sorted stream with one small state machine
   per channel.  The credit queues mirror the semaphore algebra of the
   protocols: a Wake is a V credit, a Block is a P, a Wake_drain is the
   C.3' [sem_try_p] that absorbs a raced V.  Pairing falls out of
   matching credits FIFO; the invariants fall out of a queue running
   empty (or not running dry by end of trace). *)

type dist = {
  n : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}

type pair = {
  chan : int;
  from_actor : int;
  to_actor : int;
  t_from_us : float;
  t_to_us : float;
}

let pair_us p = Float.max 0.0 (p.t_to_us -. p.t_from_us)

type violation =
  | Queue_underflow of { chan : int; t_us : float }
  | Orphan_block of { chan : int; actor : int; t_us : float }
  | Lost_wake of { chan : int; t_us : float }
  | Drain_without_wake of { chan : int; t_us : float }
  | Wake_without_dequeue of { chan : int; t_us : float }
  | Non_monotonic_actor of { actor : int; seq : int; t_us : float }
  | Seq_gap of { actor : int; expected : int; got : int }

let pp_violation ppf = function
  | Queue_underflow { chan; t_us } ->
    Format.fprintf ppf "queue underflow on chan %d at %.3f us" chan t_us
  | Orphan_block { chan; actor; t_us } ->
    Format.fprintf ppf "orphan block by actor %d on chan %d at %.3f us" actor
      chan t_us
  | Lost_wake { chan; t_us } ->
    Format.fprintf ppf "lost wake on chan %d at %.3f us" chan t_us
  | Drain_without_wake { chan; t_us } ->
    Format.fprintf ppf "drain without wake on chan %d at %.3f us" chan t_us
  | Wake_without_dequeue { chan; t_us } ->
    Format.fprintf ppf "wake without dequeue on chan %d at %.3f us" chan t_us
  | Non_monotonic_actor { actor; seq; t_us } ->
    Format.fprintf ppf "actor %d clock steps backwards at seq %d (%.3f us)"
      actor seq t_us
  | Seq_gap { actor; expected; got } ->
    Format.fprintf ppf "actor %d sequence gap: expected %d, got %d" actor
      expected got

type channel_report = {
  chan : int;
  enqueues : int;
  dequeues : int;
  blocks : int;
  wakes : int;
  wake_drains : int;
  spurious_wakes : int;
  handoffs : int;
  spin_exhausts : int;
  wake_latency : dist;
  block_duration : dist;
}

type t = {
  events : int;
  actors : int;
  span_us : float;
  complete : bool;
  channels : channel_report list;
  wake_latency : dist;
  block_duration : dist;
  wake_pairs : pair list;
  block_pairs : pair list;
  blocks : int;
  wakes : int;
  raced_wakes : int;
  spurious_wakes : int;
  handoffs : int;
  handoffs_taken : int;
  spin_exhausts : int;
  violations : violation list;
}

let empty_dist = { n = 0; mean_us = nan; p50_us = nan; p99_us = nan; max_us = nan }

let dist_of samples =
  match samples with
  | [] -> empty_dist
  | _ ->
    let a = Array.of_list samples in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank p =
      let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(Stdlib.min (n - 1) (Stdlib.max 0 i))
    in
    let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    {
      n;
      mean_us = mean;
      p50_us = rank 0.5;
      p99_us = rank 0.99;
      max_us = a.(n - 1);
    }

(* Merge order for the analysis itself: at one instant the cause must
   precede the effect, so Enqueue sorts before Wake sorts before the
   consumer-side events.  Common in the simulator (discrete time), near
   impossible on CLOCK_MONOTONIC. *)
let tie_rank = function Event.Enqueue -> 0 | Event.Wake -> 1 | _ -> 2

let causal_compare a b =
  let c = Float.compare a.Event.t_us b.Event.t_us in
  if c <> 0 then c
  else
    let c = Int.compare (tie_rank a.Event.kind) (tie_rank b.Event.kind) in
    if c <> 0 then c
    else
      let c = Int.compare a.Event.actor b.Event.actor in
      if c <> 0 then c else Int.compare a.Event.seq b.Event.seq

type chan_state = {
  mutable enqueues : int;
  mutable dequeues : int;
  mutable st_blocks : int;
  mutable st_wakes : int;
  mutable wake_drains : int;
  mutable st_handoffs : int;
  mutable st_spin_exhausts : int;
  mutable st_spurious : int;
  mutable depth : int;
  credits : (float * int) Queue.t; (* banked Wakes: time, waking actor *)
  pending_blocks : (float * int) Queue.t; (* sleepers: time, actor *)
  mutable waiting_wakes : (float * int * int) list;
      (* Wakes awaiting the woken sleeper's Dequeue, oldest first:
         time, waking actor, woken actor *)
  mutable ch_wake_pairs : pair list; (* newest first *)
  mutable ch_block_pairs : pair list; (* newest first *)
}

let fresh_chan_state () =
  {
    enqueues = 0;
    dequeues = 0;
    st_blocks = 0;
    st_wakes = 0;
    wake_drains = 0;
    st_handoffs = 0;
    st_spin_exhausts = 0;
    st_spurious = 0;
    depth = 0;
    credits = Queue.create ();
    pending_blocks = Queue.create ();
    waiting_wakes = [];
    ch_wake_pairs = [];
    ch_block_pairs = [];
  }

(* Remove the oldest waiting wake whose woken sleeper is [actor];
   [None] when there is none. *)
let take_waiting st actor =
  let rec go acc = function
    | [] -> None
    | ((t_w, wa, sl) as hd) :: tl ->
      if sl = actor then begin
        st.waiting_wakes <- List.rev_append acc tl;
        Some (t_w, wa)
      end
      else go (hd :: acc) tl
  in
  go [] st.waiting_wakes

let analyse ?(complete = true) events =
  let sorted = List.stable_sort causal_compare events in
  let violations = ref [] in
  let violate v = violations := v :: !violations in
  (* Per-actor integrity: in program order (by seq) the timestamps must
     be non-decreasing, and — rings drop oldest-first, so truncation
     keeps per-actor sequences contiguous — the sequences gap-free. *)
  let by_actor = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let l =
        match Hashtbl.find_opt by_actor ev.Event.actor with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add by_actor ev.Event.actor l;
          l
      in
      l := ev :: !l)
    events;
  let handoffs_taken = ref 0 in
  Hashtbl.iter
    (fun actor l ->
      let evs =
        List.sort (fun a b -> Int.compare a.Event.seq b.Event.seq) !l
      in
      let prev = ref None in
      List.iter
        (fun ev ->
          (match !prev with
          | Some p ->
            if ev.Event.seq <> p.Event.seq + 1 then
              violate
                (Seq_gap { actor; expected = p.Event.seq + 1; got = ev.Event.seq });
            if ev.Event.t_us < p.Event.t_us then
              violate
                (Non_monotonic_actor
                   { actor; seq = ev.Event.seq; t_us = ev.Event.t_us });
            if p.Event.kind = Event.Handoff && ev.Event.kind = Event.Dequeue
            then incr handoffs_taken
          | None -> ());
          prev := Some ev)
        evs)
    by_actor;
  (* Per-channel credit algebra over the causally sorted stream. *)
  let chans = Hashtbl.create 8 in
  let state_for chan =
    match Hashtbl.find_opt chans chan with
    | Some st -> st
    | None ->
      let st = fresh_chan_state () in
      Hashtbl.add chans chan st;
      st
  in
  List.iter
    (fun ev ->
      let chan = ev.Event.chan in
      let st = state_for chan in
      match ev.Event.kind with
      | Event.Enqueue ->
        st.enqueues <- st.enqueues + 1;
        st.depth <- st.depth + 1
      | Event.Dequeue ->
        st.dequeues <- st.dequeues + 1;
        if st.depth = 0 then (
          if complete then violate (Queue_underflow { chan; t_us = ev.t_us }))
        else st.depth <- st.depth - 1;
        (match take_waiting st ev.Event.actor with
        | Some (t_w, wa) ->
          st.ch_wake_pairs <-
            {
              chan;
              from_actor = wa;
              to_actor = ev.actor;
              t_from_us = t_w;
              t_to_us = ev.t_us;
            }
            :: st.ch_wake_pairs
        | None -> ())
      | Event.Block -> (
        st.st_blocks <- st.st_blocks + 1;
        (* A sleeper re-blocking before it dequeued means its previous
           wake was spurious (the producer tas-claimed a waiting flag
           raised for a later wait): the wake woke it, but there was no
           message, so no dequeue will ever pair with it.  Cancel the
           expectation rather than flag a violation. *)
        (match take_waiting st ev.Event.actor with
        | Some _ -> st.st_spurious <- st.st_spurious + 1
        | None -> ());
        match Queue.take_opt st.credits with
        | Some (t_w, wa) ->
          (* The raced case: V landed before P, so the block releases
             immediately and its wake still owes a dequeue. *)
          st.ch_block_pairs <-
            {
              chan;
              from_actor = ev.actor;
              to_actor = wa;
              t_from_us = ev.t_us;
              t_to_us = t_w;
            }
            :: st.ch_block_pairs;
          st.waiting_wakes <- st.waiting_wakes @ [ (t_w, wa, ev.actor) ]
        | None -> Queue.push (ev.t_us, ev.actor) st.pending_blocks)
      | Event.Wake -> (
        st.st_wakes <- st.st_wakes + 1;
        match Queue.take_opt st.pending_blocks with
        | Some (t_b, ba) ->
          st.ch_block_pairs <-
            {
              chan;
              from_actor = ba;
              to_actor = ev.actor;
              t_from_us = t_b;
              t_to_us = ev.t_us;
            }
            :: st.ch_block_pairs;
          st.waiting_wakes <- st.waiting_wakes @ [ (ev.t_us, ev.actor, ba) ]
        | None -> Queue.push (ev.t_us, ev.actor) st.credits)
      | Event.Wake_drain -> (
        st.wake_drains <- st.wake_drains + 1;
        match Queue.take_opt st.credits with
        | Some _ -> ()
        | None ->
          if complete then
            violate (Drain_without_wake { chan; t_us = ev.t_us }))
      | Event.Handoff -> st.st_handoffs <- st.st_handoffs + 1
      | Event.Spin_exhaust -> st.st_spin_exhausts <- st.st_spin_exhausts + 1)
    sorted;
  if complete then
    Hashtbl.iter
      (fun chan st ->
        Queue.iter
          (fun (t_b, ba) ->
            violate (Orphan_block { chan; actor = ba; t_us = t_b }))
          st.pending_blocks;
        Queue.iter
          (fun (t_w, _) -> violate (Lost_wake { chan; t_us = t_w }))
          st.credits;
        List.iter
          (fun (t_w, _, _) ->
            violate (Wake_without_dequeue { chan; t_us = t_w }))
          st.waiting_wakes)
      chans;
  let channels =
    Hashtbl.fold
      (fun chan st acc ->
        {
          chan;
          enqueues = st.enqueues;
          dequeues = st.dequeues;
          blocks = st.st_blocks;
          wakes = st.st_wakes;
          wake_drains = st.wake_drains;
          spurious_wakes = st.st_spurious;
          handoffs = st.st_handoffs;
          spin_exhausts = st.st_spin_exhausts;
          wake_latency =
            dist_of (List.rev_map pair_us st.ch_wake_pairs);
          block_duration =
            dist_of (List.rev_map pair_us st.ch_block_pairs);
        }
        :: acc)
      chans []
    |> List.sort (fun a b -> Int.compare a.chan b.chan)
  in
  let all_pairs sel =
    Hashtbl.fold (fun _ st acc -> List.rev_append (sel st) acc) chans []
    |> List.sort (fun a b -> Float.compare a.t_from_us b.t_from_us)
  in
  let wake_pairs = all_pairs (fun st -> st.ch_wake_pairs) in
  let block_pairs = all_pairs (fun st -> st.ch_block_pairs) in
  let sum sel = List.fold_left (fun acc c -> acc + sel c) 0 channels in
  let span_us =
    match sorted with
    | [] -> 0.0
    | first :: _ ->
      let rec last = function
        | [ e ] -> e
        | _ :: tl -> last tl
        | [] -> assert false
      in
      (last sorted).Event.t_us -. first.Event.t_us
  in
  {
    events = List.length events;
    actors = Hashtbl.length by_actor;
    span_us;
    complete;
    channels;
    wake_latency = dist_of (List.map pair_us wake_pairs);
    block_duration = dist_of (List.map pair_us block_pairs);
    wake_pairs;
    block_pairs;
    blocks = sum (fun c -> c.blocks);
    wakes = sum (fun c -> c.wakes);
    raced_wakes = sum (fun c -> c.wake_drains);
    spurious_wakes = sum (fun c -> c.spurious_wakes);
    handoffs = sum (fun c -> c.handoffs);
    handoffs_taken = !handoffs_taken;
    spin_exhausts = sum (fun c -> c.spin_exhausts);
    violations = List.rev !violations;
  }

let pp_dist ppf d =
  if d.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d p50=%.2f p99=%.2f max=%.2f" d.n d.p50_us d.p99_us
      d.max_us

(* Negative ids are the request shards, [-(k+1)] for shard [k] (shard 0
   keeps the historical bare "request"); non-negative ids are reply
   channels, one per client. *)
let chan_name = function
  | -1 -> "request"
  | n when n < 0 -> Printf.sprintf "request/%d" (-n - 1)
  | n -> Printf.sprintf "reply %d" n

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "trace: %d events, %d actors, span %.1f us%s@,"
    r.events r.actors r.span_us
    (if r.complete then "" else " (truncated: end-state checks skipped)");
  Format.fprintf ppf
    "totals: %d blocks, %d wakes (%d raced, %d spurious), %d handoffs, %d \
     spin exhausts@,"
    r.blocks r.wakes r.raced_wakes r.spurious_wakes r.handoffs r.spin_exhausts;
  Format.fprintf ppf "%-10s %7s %7s %6s %6s   %-34s %-34s@," "channel" "enq"
    "deq" "block" "wake" "wake-latency (us)" "block-duration (us)";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10s %7d %7d %6d %6d   %-34s %-34s@,"
        (chan_name c.chan) c.enqueues c.dequeues c.blocks c.wakes
        (Format.asprintf "%a" pp_dist c.wake_latency)
        (Format.asprintf "%a" pp_dist c.block_duration))
    r.channels;
  Format.fprintf ppf "overall wake latency:   %a@," pp_dist r.wake_latency;
  Format.fprintf ppf "overall block duration: %a@," pp_dist r.block_duration;
  if r.handoffs > 0 then
    Format.fprintf ppf "handoff hints taken: %d/%d@," r.handoffs_taken
      r.handoffs;
  (match r.violations with
  | [] -> Format.fprintf ppf "invariants: OK (0 violations)"
  | vs ->
    Format.fprintf ppf "invariants: %d violation(s)" (List.length vs);
    List.iteri
      (fun i v ->
        if i < 20 then Format.fprintf ppf "@,  %a" pp_violation v
        else if i = 20 then Format.fprintf ppf "@,  ...")
      vs);
  Format.fprintf ppf "@]"
