(** The unified trace-event schema shared by both backends.

    One structured event type covers the whole sleep/wake-up seam: queue
    transfers (enqueue/dequeue), the scheduler interactions the paper's
    protocols are built from (block = semaphore P, wake = semaphore V,
    raced-wake drain), and the §5/§6 hints (spin exhaustion, handoff).
    The simulator substrate stamps events with simulated time and proc
    ids; the real backend stamps CLOCK_MONOTONIC and domain ids.  Both
    attach a per-actor sequence number so merged cross-actor streams
    order deterministically and per-actor program order is recoverable
    even under timestamp ties. *)

type kind =
  | Enqueue  (** a message was accepted by a channel's queue *)
  | Dequeue  (** a message was taken from a channel's queue *)
  | Block  (** a consumer entered the semaphore P of step C.4 *)
  | Wake  (** a producer issued the semaphore V of step P.3 *)
  | Wake_drain
      (** a consumer absorbed a raced wake-up's semaphore credit (the
          [sem_try_p] drain of step C.3') without ever sleeping *)
  | Handoff  (** a §6 handoff/yield scheduling hint was issued *)
  | Spin_exhaust
      (** a §5 limited spin burned its full budget and fell through to
          the blocking path *)

val kind_name : kind -> string

val kind_tag : kind -> int
(** Dense int code of a kind (0-based, stable), so allocation-free
    recorders can store kinds in flat int arrays. *)

val kind_of_tag : int -> kind
(** Inverse of {!kind_tag}.
    @raise Invalid_argument on an unknown code. *)

type t = {
  t_us : float;
      (** timestamp in µs: CLOCK_MONOTONIC on the real backend,
          simulated time on the simulator — comparable within one trace,
          never across backends *)
  actor : int;
      (** recording actor: [Domain.self] on the real backend, the
          simulated proc's pid on the simulator *)
  seq : int;  (** per-actor sequence number, starting at 0 *)
  chan : int;  (** -1 = shared request channel, n = reply channel n *)
  kind : kind;
}

val compare : t -> t -> int
(** Total order by [(t_us, actor, seq)] — the deterministic cross-actor
    merge order. *)

val namespace_actor : pid:int -> t -> t
(** Disambiguate actor ids across fork'd processes (each of which
    records as [Domain.self () = 0]): fold [pid] into the actor's high
    bits, keeping the domain id in the low 12.  Timestamps need no such
    treatment — CLOCK_MONOTONIC is per-boot and system-wide on Linux,
    so stamps taken in different processes are directly comparable
    (see {!Clock.now_us}). *)

val pp : Format.formatter -> t -> unit
