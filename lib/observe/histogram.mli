(** Fixed-size log-bucketed latency histogram.

    The observability counterpart of the engine's [Stat] for runs with
    millions of samples: a preallocated array of geometric buckets
    (default 64 per decade over 10 decades) plus exact count/sum/min/max,
    so memory stays constant no matter how many values are recorded and
    percentiles are answered with a bounded relative error of one bucket
    width ([bucket_ratio t - 1], about 3.7% at the default resolution).

    Recording is single-owner by design: give each domain its own
    histogram, record without any synchronisation, then {!merge_into} a
    destination after [Domain.join] — the merge is plain array addition,
    no locks anywhere.  The simulator and the real-domains driver both
    report through this type, so one percentile path serves both
    backends. *)

type t

val create :
  ?lo:float -> ?decades:int -> ?buckets_per_decade:int -> string -> t
(** [create name] is an empty histogram whose regular buckets cover
    [\[lo, lo * 10^decades)] (defaults: [lo = 1e-3], [decades = 10],
    [buckets_per_decade = 64] — 1 ns to 10 s when values are in µs).
    Values below [lo] (including non-finite ones) land in a dedicated
    underflow bucket, values beyond the top edge in an overflow bucket;
    both are still bounded by the exact min/max.
    @raise Invalid_argument on non-positive [lo], [decades] or
    [buckets_per_decade]. *)

val name : t -> string

val bucket_ratio : t -> float
(** Geometric width of one bucket ([10^(1/buckets_per_decade)]); the
    relative error bound of {!percentile} is [bucket_ratio t - 1]. *)

val record : t -> float -> unit
(** Add one value.  Not thread-safe: one writer per histogram. *)

val count : t -> int
val total : t -> float

val mean : t -> float
(** Exact mean of the recorded values ([nan] when empty). *)

val min_value : t -> float
(** Exact minimum; [nan] when empty. *)

val max_value : t -> float
(** Exact maximum; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], with the same interpolated
    rank as the engine's [Stat.percentile]: the returned value differs
    from the exact sample percentile by at most one bucket's relative
    error, and is clamped into [\[min_value, max_value\]].
    @raise Invalid_argument when empty or [p] is out of range. *)

val merge_into : dst:t -> t -> unit
(** Fold the second histogram into [dst] by bucket-wise addition.  Safe
    once the source's writer has been joined; no locking is involved.
    @raise Invalid_argument if the bucket geometries differ. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

val pp_buckets : Format.formatter -> t -> unit
(** Render the non-empty buckets as a text histogram, one row per bucket
    with a [#] bar scaled to the fullest bucket. *)
