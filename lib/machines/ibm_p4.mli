(** The IBM P4 of §2.2: AIX 4.1 on a 133 MHz PowerPC 604.

    No AIX primitive costs are tabulated in the paper; the calibration is
    fitted to Figure 2b's anchors (BSS ≈ 32 msg/ms at one client rolling
    off to ≈ 19 at six; System V ≈ 1.8× below and flatter) and to the
    ≈ 30% fixed-priority gain of Figure 3.  See the implementation comment
    for the two modelling choices involved. *)

val machine : Machine.t
