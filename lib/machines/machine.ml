type t = {
  name : string;
  description : string;
  ncpus : int;
  multiprocessor : bool;
  costs : Ulipc_os.Costs.t;
  policy : unit -> Ulipc_os.Policy.t;
  supports_fixed_priority : bool;
}

let v ~name ~description ~ncpus ~costs ~policy ~supports_fixed_priority =
  if ncpus <= 0 then invalid_arg "Machine.v: ncpus must be positive";
  {
    name;
    description;
    ncpus;
    multiprocessor = ncpus > 1;
    costs;
    policy;
    supports_fixed_priority;
  }

let pp ppf t =
  Format.fprintf ppf "%s (%s, %d cpu%s)" t.name t.description t.ncpus
    (if t.ncpus = 1 then "" else "s")
