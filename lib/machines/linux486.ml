open Ulipc_engine
open Ulipc_os

(* The Linux 1.0.32 Slackware machine of §6: a 66 MHz 486.  Three variants:

   - [stock]: the original simplistic scheduler.  Counters drain at timer
     ticks and the last-run process keeps an affinity edge, so sched_yield
     between two spinners returns to the caller for a whole tick — BSS
     round-trips are tens of milliseconds instead of microseconds.
   - [modified_yield]: the paper's fix — sched_yield expires the caller's
     quantum and forces a context switch, restoring the ~120 µs round-trip.
   - [with_handoff]: modified yield plus the handoff(pid) system call of
     §6 (the HANDOFF protocol uses it; on this machine it matched BSWY, as
     the paper reports).

   Costs are scaled for a 66 MHz 486: every kernel path is a few times
   slower than the 133 MHz RISC machines. *)

let costs : Costs.t =
  {
    syscall_entry = Sim_time.us 16;
    yield_body = Sim_time.us 6 (* yield = 22 us *);
    ctx_switch = Sim_time.us 30;
    ctx_switch_per_ready = Sim_time.zero;
    sem_op = Sim_time.us 10;
    msg_op = Sim_time.us 12;
    sleep_setup = Sim_time.us 5;
    block_extra = Sim_time.us 10;
    wake_extra = Sim_time.us 10;
    time_read = Sim_time.us 2;
    shared_read = Sim_time.ns 200;
    shared_write = Sim_time.ns 300;
    tas = Sim_time.ns 600;
    flag_write = Sim_time.ns 300;
    queue_op_body = Sim_time.ns 800;
    poll_spin = Sim_time.us 25;
    spin_delay = Sim_time.us 1;
  }

let sched_params ~modified_yield : Sched_linux.params =
  {
    quantum = Sim_time.ms 150 (* 15 ticks, the Linux 1.0 default *);
    tick = Sim_time.ms 10 (* HZ = 100 *);
    affinity_bonus = 5.0e6 (* half a tick *);
    modified_yield;
    handoff_penalty_ns = 1.0e4;
  }

let stock =
  Machine.v ~name:"linux486-stock"
    ~description:"Linux 1.0.32, 66 MHz 486, stock scheduler" ~ncpus:1 ~costs
    ~policy:(fun () -> Sched_linux.create (sched_params ~modified_yield:false))
    ~supports_fixed_priority:false

let modified_yield =
  Machine.v ~name:"linux486-modyield"
    ~description:"Linux 1.0.32, 66 MHz 486, modified sched_yield" ~ncpus:1
    ~costs
    ~policy:(fun () -> Sched_linux.create (sched_params ~modified_yield:true))
    ~supports_fixed_priority:false

let with_handoff = modified_yield
(* The handoff syscall is available on every policy through
   [Usys.handoff]; the paper's Linux implementation ran it on top of the
   modified-yield scheduler. *)
