(** The SGI Indy of §2.2: IRIX 6.2 on a 133 MHz MIPS R4000, 32 KB split L1
    and 512 KB L2.

    Calibration anchors, all from the paper:
    - Table 1: enqueue/dequeue pair 3 µs, msgsnd/msgrcv pair 37 µs,
      concurrent-yield trip 16 µs alone;
    - §2.2: BSS round-trip ≈ 119 µs with one client, ~2.5 yields per
      process per round-trip, caused by degrading priorities;
    - Figure 3: fixed priorities buy ≈ 50%.

    The context-switch cost (18 µs) is deliberately larger than the pure
    yield-to-yield delta of Table 1: it folds in the cache-state loss the
    paper's own fixed-priority measurement exposes (Table 1's tiny yield
    loop keeps its footprint cached; the IPC workload does not). *)

val costs : Ulipc_os.Costs.t
(** The calibrated cost table; {!Sgi_challenge} derives from it. *)

val sched_params : Ulipc_os.Sched_decay.params
val machine : Machine.t
