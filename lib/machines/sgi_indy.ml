open Ulipc_engine
open Ulipc_os

let costs : Costs.t =
  {
    syscall_entry = Sim_time.us 12;
    yield_body = Sim_time.us 4 (* yield = 16 us, Table 1 *);
    ctx_switch = Sim_time.us 18;
    ctx_switch_per_ready = Sim_time.zero;
    sem_op = Sim_time.us 6 (* P/V = 18 us: "similar weight to msgq calls" *);
    msg_op = Sim_time.us_f 6.5 (* msgsnd+msgrcv pair = 37 us, Table 1 *);
    sleep_setup = Sim_time.us 3;
    block_extra = Sim_time.us 18;
    wake_extra = Sim_time.us 18;
    time_read = Sim_time.us 1;
    shared_read = Sim_time.ns 100;
    shared_write = Sim_time.ns 150;
    tas = Sim_time.ns 300;
    flag_write = Sim_time.ns 150;
    queue_op_body = Sim_time.ns 400 (* enq+deq pair = 3 us, Table 1 *);
    poll_spin = Sim_time.us 25;
    spin_delay = Sim_time.us 1;
  }

let sched_params : Sched_decay.params =
  {
    usage_weight = 1.0;
    band_ns = 1.0e5;
    half_life_ns = 5.5e7
    (* the decisive knob: tuned so one BSS client shows the paper's ~2.5
       yields per process per round-trip and ~119 us round-trips (§2.2) *);
    quantum = Sim_time.ms 10;
    preempt_margin_bands = 3.0;
    handoff_penalty_ns = 2.0e4;
    supports_fixed = true;
  }

let machine =
  Machine.v ~name:"sgi-indy" ~description:"IRIX 6.2, 133 MHz MIPS R4000"
    ~ncpus:1 ~costs
    ~policy:(fun () -> Sched_decay.create sched_params)
    ~supports_fixed_priority:true
