(** The Linux 1.0.32 / 66 MHz 486 machine of §6, in three scheduler
    variants. *)

val stock : Machine.t
(** Original scheduler: tick-grain counter accounting plus a last-run
    affinity edge make [sched_yield] between spinners return to the caller
    for a whole tick — BSS round-trips land in the tens of milliseconds. *)

val modified_yield : Machine.t
(** The paper's fix: [sched_yield] expires the caller's quantum and forces
    a switch, restoring the ~120 µs round-trip. *)

val with_handoff : Machine.t
(** The modified-yield scheduler; the [handoff] system call is exercised by
    the HANDOFF protocol on top of it, as in §6. *)
