(** The 8-processor SGI Challenge of §5.  Identical software to the
    uniprocessor runs; busy-waiting becomes a 25 µs checking delay loop. *)

val machine : Machine.t
