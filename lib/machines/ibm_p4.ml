open Ulipc_engine
open Ulipc_os

(* The IBM P4 of §2.2: AIX 4.1 on a 133 MHz PowerPC 604, same cache
   configuration as the Indy.  The paper tabulates no AIX primitive costs;
   this calibration is fitted to Figure 2b's anchors — BSS peaking near
   ~30 msg/ms and rolling off towards the teens with six clients, System V
   IPC well below BSS and much flatter — and to the ≈ 30% fixed-priority
   gain of Figure 3.  Two modelling choices produce the opposite trend
   from IRIX: a much smaller priority band with a faster usage decay
   (AIX's yield hands off after far less spinning), and a context-switch
   cost that grows with the number of ready processes (run-queue scan and
   cache pollution), which is what rolls throughput off as clients are
   added. *)

let costs : Costs.t =
  {
    syscall_entry = Sim_time.us 5;
    yield_body = Sim_time.us 1 (* yield = 6 us *);
    ctx_switch = Sim_time.us 5;
    ctx_switch_per_ready = Sim_time.us_f 1.2;
    sem_op = Sim_time.us 3;
    msg_op = Sim_time.us 5;
    sleep_setup = Sim_time.us 2;
    block_extra = Sim_time.us 4;
    wake_extra = Sim_time.us 4;
    time_read = Sim_time.us_f 0.5;
    shared_read = Sim_time.ns 100;
    shared_write = Sim_time.ns 150;
    tas = Sim_time.ns 300;
    flag_write = Sim_time.ns 150;
    queue_op_body = Sim_time.ns 400;
    poll_spin = Sim_time.us 25;
    spin_delay = Sim_time.us 1;
  }

let sched_params : Sched_decay.params =
  {
    usage_weight = 1.0;
    band_ns = 3.2e4;
    half_life_ns = 2.0e7;
    quantum = Sim_time.ms 10;
    preempt_margin_bands = 4.0;
    handoff_penalty_ns = 2.0e4;
    supports_fixed = true;
  }

let machine =
  Machine.v ~name:"ibm-p4" ~description:"AIX 4.1, 133 MHz PowerPC 604" ~ncpus:1
    ~costs
    ~policy:(fun () -> Sched_decay.create sched_params)
    ~supports_fixed_priority:true
