(** A calibrated machine model: CPUs, a cost table, and a scheduler.

    The four machines of the paper's evaluation live in sibling modules
    ({!Sgi_indy}, {!Ibm_p4}, {!Sgi_challenge}, {!Linux486}).  A machine's
    [policy] field is a factory — policies are stateful, so every
    simulation run must create its own instance. *)

type t = {
  name : string;
  description : string;  (** hardware/OS line, as the paper describes it *)
  ncpus : int;
  multiprocessor : bool;
      (** drives the protocols' [busy_wait] choice (§2.1); true iff
          [ncpus > 1] *)
  costs : Ulipc_os.Costs.t;
  policy : unit -> Ulipc_os.Policy.t;  (** fresh scheduler instance *)
  supports_fixed_priority : bool;
      (** whether the Figure-3/8 fixed-priority runs are possible here *)
}

val v :
  name:string ->
  description:string ->
  ncpus:int ->
  costs:Ulipc_os.Costs.t ->
  policy:(unit -> Ulipc_os.Policy.t) ->
  supports_fixed_priority:bool ->
  t
(** Smart constructor; sets [multiprocessor] from [ncpus]. *)

val pp : Format.formatter -> t -> unit
