open Ulipc_engine
open Ulipc_os

(* The 8-processor SGI Challenge of §5.  Same software as the uniprocessor
   runs; the only difference the paper makes is that busy-waiting becomes a
   25 µs delay loop with the empty check on every iteration.  Costs follow
   the Indy calibration (the Challenge's processors are of the same
   generation); the kernel wake path is what BSLS's positive-feedback
   collapse turns on, so [wake_extra] stays substantial. *)

let costs : Costs.t =
  {
    Sgi_indy.costs with
    ctx_switch = Sim_time.us 14;
    poll_spin = Sim_time.us 25;
  }

let sched_params : Sched_decay.params =
  { Sgi_indy.sched_params with quantum = Sim_time.ms 10 }

let machine =
  Machine.v ~name:"sgi-challenge" ~description:"IRIX, 8-CPU SGI Challenge"
    ~ncpus:8 ~costs
    ~policy:(fun () -> Sched_decay.create sched_params)
    ~supports_fixed_priority:true
